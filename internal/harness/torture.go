package harness

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/wal"
	"github.com/spitfire-db/spitfire/internal/ycsb"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// The torture workload's table: small fixed tuples whose first eight bytes
// carry a per-key sequence number and whose remainder is a deterministic
// fill derived from (key, seq), so a single read both identifies which write
// survived and proves the tuple is not torn.
const (
	tortureTableID   = 7
	tortureTupleSize = 512
)

// noSeq marks a key with no write in flight at the crash.
const noSeq = ^uint64(0)

// TortureOpts configures the crash-recovery torture harness.
type TortureOpts struct {
	// Cycles is how many crash-recover rounds to run (default 100).
	Cycles int
	// Workers is the number of concurrent writer goroutines (default 4).
	// Keys are partitioned across workers so every key has one writer.
	Workers int
	// Keys is the number of distinct keys (default 2048).
	Keys int
	// OpsPerCycle is the per-worker update budget before the cycle's crash
	// window closes (default 150).
	OpsPerCycle int
	// Seed makes the whole torture run deterministic for a given goroutine
	// schedule; distinct seeds explore distinct crash points.
	Seed uint64
	// TransientProb sprinkles transient read/write/torn faults on the NVM
	// data arena during the workload phase (default 0: crash faults only).
	// The WAL and SSD devices stay fault-free outside crash points so commit
	// acknowledgements remain trustworthy.
	TransientProb float64
	// FineGrained tortures the cache-line-grained loading path (§2.1):
	// DRAM frames backed by an NVM copy fault 256 B units in on demand, so
	// crashes and transient faults land mid-unit-fill instead of on
	// whole-page copies.
	FineGrained bool
	// Shards splits the WAL's NVM buffer into this many worker-affine
	// append regions (default 1: the single-buffer layout), so crashes land
	// between concurrent shard appends and combined group-commit flushes.
	// The same count shards the buffer pools' replacement state (per-shard
	// CLOCK hands and free lists), so crashes and transient faults also
	// land between cross-shard frame steals.
	Shards int
	// Log, if non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o TortureOpts) withDefaults() TortureOpts {
	if o.Cycles <= 0 {
		o.Cycles = 100
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Keys <= 0 {
		o.Keys = 2048
	}
	if o.OpsPerCycle <= 0 {
		o.OpsPerCycle = 150
	}
	if o.Seed == 0 {
		o.Seed = 0x70A7
	}
	return o
}

// TortureResult summarizes a torture run.
type TortureResult struct {
	Cycles      int   // crash-recover rounds completed
	Commits     int64 // acknowledged transactions across all cycles
	OpErrors    int64 // operations failed by injected faults (mostly the crash)
	MidRunTrips int   // cycles whose crash tripped during the workload
	TornWrites  int64 // torn writes injected at crash points

	// Aggregated WAL recovery stats across all cycles.
	Recovery wal.RecoveryStats

	// Violations lists every invariant breach found (empty on success).
	Violations []string
}

// torture is the harness state threaded through one run.
type torture struct {
	opts TortureOpts
	rng  *zipf.Rand

	// Simulated machine: one crash switch shared by every device.
	crash   *device.CrashSwitch
	ssdDev  *device.Device
	nvmDev  *device.Device // data arena
	walDev  *device.Device // WAL buffer (separate DIMM from the data arena)
	ssdInj  *device.Injector
	nvmInj  *device.Injector
	walInj  *device.Injector
	disk    *ssd.MemStore
	dataPM  *pmem.PMem
	walPM   *pmem.PMem
	logFile *wal.MemLog

	db *engine.DB

	// Per-key write bookkeeping (index = key-1). Workers touch only their
	// partition during a cycle; the verifier touches everything between
	// cycles (ordered by the workers' WaitGroup).
	acked   []uint64 // last acknowledged-committed seq
	pending []uint64 // seq in flight at the crash, or noSeq
	nextSeq []uint64

	res TortureResult
}

// Torture runs the crash-recovery torture harness: randomized single-writer
// workloads killed at randomized injected crash points (mid-migration,
// mid-WAL-flush, mid-cleaner-batch — wherever the machine-wide write
// countdown lands), followed by pmem rollback, full recovery, a structural
// consistency audit, and a value check that every key holds either its last
// acknowledged write or the one write that was in flight — never anything
// else, and never a torn tuple.
func Torture(opts TortureOpts) (*TortureResult, error) {
	t := &torture{opts: opts.withDefaults()}
	t.rng = zipf.NewRand(t.opts.Seed | 1)
	t.acked = make([]uint64, t.opts.Keys)
	t.pending = make([]uint64, t.opts.Keys)
	t.nextSeq = make([]uint64, t.opts.Keys)
	for i := range t.pending {
		t.pending[i] = noSeq
		t.nextSeq[i] = 1
	}

	if err := t.boot(); err != nil {
		return nil, err
	}
	for c := 0; c < t.opts.Cycles; c++ {
		if err := t.cycle(c); err != nil {
			return &t.res, err
		}
		if len(t.res.Violations) >= 20 {
			break
		}
		t.logf("cycle %d/%d: commits=%d violations=%d",
			c+1, t.opts.Cycles, t.res.Commits, len(t.res.Violations))
	}
	t.db.BM().Close()
	t.res.TornWrites = t.ssdInj.Stats().TornWrites +
		t.nvmInj.Stats().TornWrites + t.walInj.Stats().TornWrites
	return &t.res, nil
}

func (t *torture) logf(format string, args ...any) {
	if t.opts.Log != nil {
		t.opts.Log(format, args...)
	}
}

// geometry returns the buffer capacities: the database (~70 pages at 512 B
// tuples over 2048 keys) outgrows NVM, which outgrows DRAM, so every cycle
// migrates pages across all three tiers.
func (t *torture) geometry() (dramBytes, nvmBytes int64) {
	pages := int64(t.opts.Keys)*tortureTupleSize/core.PageSize + 1
	nvmFrames := pages * 2 / 3
	if nvmFrames < 4 {
		nvmFrames = 4
	}
	dramFrames := pages / 3
	if dramFrames < 2 {
		dramFrames = 2
	}
	return dramFrames * core.PageSize, nvmFrames * core.NVMFrameSlot
}

func (t *torture) coreCfg() core.Config {
	dramBytes, nvmBytes := t.geometry()
	return core.Config{
		DRAMBytes:   dramBytes,
		NVMBytes:    nvmBytes,
		Policy:      policy.SpitfireEager,
		SSD:         t.disk,
		PMem:        t.dataPM,
		FineGrained: t.opts.FineGrained,
		Shards:      t.opts.Shards,
	}
}

// boot builds the simulated machine and loads the initial database.
func (t *torture) boot() error {
	t.crash = device.NewCrashSwitch()
	t.ssdDev = device.New(device.SSDParams)
	t.nvmDev = device.New(device.NVMParams)
	t.walDev = device.New(device.NVMParams)
	t.ssdInj = device.NewInjector(device.FaultConfig{Seed: t.opts.Seed ^ 0x55D})
	t.nvmInj = device.NewInjector(t.nvmFaultCfg(t.opts.Seed ^ 0x4E4))
	t.walInj = device.NewInjector(device.FaultConfig{Seed: t.opts.Seed ^ 0x3A1})
	for _, in := range []*device.Injector{t.ssdInj, t.nvmInj, t.walInj} {
		in.AttachCrash(t.crash)
	}
	t.ssdDev.SetFaults(t.ssdInj)
	t.nvmDev.SetFaults(t.nvmInj)
	t.walDev.SetFaults(t.walInj)

	t.disk = ssd.NewMem(t.ssdDev)
	t.logFile = wal.NewMemLog(t.ssdDev)
	_, nvmBytes := t.geometry()
	t.dataPM = pmem.New(pmem.Options{Size: nvmBytes, Device: t.nvmDev, TrackCrashes: true})
	t.walPM = pmem.New(pmem.Options{Size: 1 << 20, Device: t.walDev, TrackCrashes: true})

	cfg := t.coreCfg()
	cfg.Cleaner = core.CleanerConfig{Enable: true}
	bm, err := core.New(cfg)
	if err != nil {
		return err
	}
	w, err := wal.New(wal.Options{Buffer: t.walPM, Store: t.logFile, Shards: t.opts.Shards})
	if err != nil {
		return err
	}
	db, err := engine.Open(engine.Options{BM: bm, WAL: w})
	if err != nil {
		return err
	}
	tb, err := db.CreateTable(tortureTableID, "torture", tortureTupleSize)
	if err != nil {
		return err
	}
	ctx := core.NewCtx(t.opts.Seed ^ 0xB007)
	err = tb.Load(ctx, uint64(t.opts.Keys), func(i uint64, p []byte) uint64 {
		tortureFill(p, i+1, 0)
		return i + 1
	})
	if err != nil {
		return err
	}
	t.db = db
	return nil
}

// nvmFaultCfg is the data arena's workload-phase fault mix.
func (t *torture) nvmFaultCfg(seed uint64) device.FaultConfig {
	p := t.opts.TransientProb
	return device.FaultConfig{
		Seed:          seed,
		ReadErrProb:   p,
		WriteErrProb:  p,
		TornWriteProb: p / 2,
		StallProb:     p,
		StallNs:       50_000,
	}
}

// cycle runs one workload-crash-recover-verify round.
func (t *torture) cycle(c int) error {
	o := t.opts
	// Workload-phase faults: transient errors on the data arena only (the
	// recovery and verification phases below rearm everything fault-free).
	t.nvmInj.Rearm(t.nvmFaultCfg(o.Seed ^ uint64(c)<<12 ^ 0x4E4))
	// Arm the machine-wide crash point. Each transaction issues a handful of
	// checked writes (WAL records, page installs, migrations), so this span
	// usually lands the crash mid-workload; when the workers drain first, the
	// machine is killed at the quiescent boundary instead.
	span := uint64(o.Workers*o.OpsPerCycle) * 6
	t.crash.Arm(int64(1 + t.rng.Uint64n(span)))

	tb := t.db.Table(tortureTableID)
	var commits, opErrs atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < o.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ctx := core.NewCtx(o.Seed ^ uint64(c)<<20 ^ uint64(wi)<<4)
			rng := zipf.NewRand(o.Seed + uint64(c)*0x9E37 + uint64(wi)*0x79B9 | 1)
			// This worker's key partition.
			var keys []uint64
			for k := wi; k < o.Keys; k += o.Workers {
				keys = append(keys, uint64(k))
			}
			buf := make([]byte, tortureTupleSize)
			for i := 0; i < o.OpsPerCycle && !t.crash.Tripped(); i++ {
				ki := keys[rng.Uint64n(uint64(len(keys)))]
				key := ki + 1
				seq := t.nextSeq[ki]
				t.nextSeq[ki]++
				t.pending[ki] = seq
				tortureFill(buf, key, seq)
				txn := t.db.Begin()
				err := tb.Update(ctx, txn, key, buf)
				if err == nil {
					err = txn.Commit(ctx)
				} else {
					_ = txn.Abort(ctx) // best-effort; fails once crashed
				}
				if err == nil {
					t.acked[ki] = seq
					t.pending[ki] = noSeq
					commits.Add(1)
				} else {
					opErrs.Add(1)
					if t.crash.Tripped() {
						return // machine is dead; stop issuing work
					}
					// A transient fault escaped the retry budget: the txn
					// aborted, but whether its images reached the log is
					// unknown, so the seq stays pending.
				}
			}
		}(wi)
	}
	wg.Wait()
	t.res.Commits += commits.Load()
	t.res.OpErrors += opErrs.Load()

	if t.crash.Tripped() {
		t.res.MidRunTrips++
	} else {
		t.crash.Trip() // workers drained first: kill at the quiescent boundary
	}

	// Power loss: stop the background cleaners, roll every unpersisted store
	// back, and discard all volatile state (the old BM, engine, and WAL
	// manager are never touched again).
	t.db.BM().Close()
	t.dataPM.Crash()
	t.walPM.Crash()

	// Reboot fault-free: clear the trip, reseed the injectors. Recovery,
	// verification and the checkpoint all run on a healthy machine.
	t.crash.Arm(0)
	t.ssdInj.Rearm(device.FaultConfig{Seed: o.Seed ^ uint64(c)<<8 ^ 0x55D})
	t.nvmInj.Rearm(device.FaultConfig{Seed: o.Seed ^ uint64(c)<<8 ^ 0x4E4})
	t.walInj.Rearm(device.FaultConfig{Seed: o.Seed ^ uint64(c)<<8 ^ 0x3A1})

	// Recover: NVM arena scan, log completion + redo/undo, directory rebuild.
	cfg := t.coreCfg() // cleaners stay off until the audit passes
	bm, err := core.Recover(cfg)
	if err != nil {
		return fmt.Errorf("cycle %d: buffer-manager recovery: %w", c, err)
	}
	rctx := engine.NewRecoveryCtx()
	db, rl, err := engine.Recover(rctx, engine.RecoverOptions{
		BM:     bm,
		WAL:    wal.Options{Buffer: t.walPM, Store: t.logFile, Shards: t.opts.Shards},
		Schema: []engine.TableDef{{ID: tortureTableID, Name: "torture", TupleSize: tortureTupleSize}},
	})
	if err != nil {
		bm.Close()
		return fmt.Errorf("cycle %d: engine recovery: %w", c, err)
	}
	t.db = db
	st := rl.Stats
	t.res.Recovery.BufferRecords += st.BufferRecords
	t.res.Recovery.FileRecords += st.FileRecords
	t.res.Recovery.ChecksumMismatches += st.ChecksumMismatches
	t.res.Recovery.SkippedBytes += st.SkippedBytes
	t.res.Recovery.TruncatedTailBytes += st.TruncatedTailBytes
	t.res.Recovery.DuplicateLSNs += st.DuplicateLSNs

	// Structural audit before anything else runs against the manager.
	if err := bm.CheckConsistency(); err != nil {
		t.violate("cycle %d: %v", c, err)
	}

	// Value audit: every key must hold its last acknowledged write or the
	// one write in flight at the crash, with an intact deterministic fill.
	t.verify(rctx, c)

	// Checkpoint so the log file stays short, then restart the cleaners for
	// the next cycle's workload.
	if _, err := t.db.Checkpoint(rctx); err != nil {
		return fmt.Errorf("cycle %d: post-recovery checkpoint: %w", c, err)
	}
	bm.StartCleaners()
	t.res.Cycles++
	return nil
}

func (t *torture) violate(format string, args ...any) {
	if len(t.res.Violations) < 20 {
		t.res.Violations = append(t.res.Violations, fmt.Sprintf(format, args...))
	}
}

// verify reads every key back and checks the recovered value against the
// acknowledged/pending bookkeeping, then re-bases the bookkeeping on what
// recovery actually chose (an in-flight write whose commit record reached
// the durable log is committed even though the worker never saw the ack).
func (t *torture) verify(ctx *core.Ctx, c int) {
	tb := t.db.Table(tortureTableID)
	txn := t.db.Begin()
	buf := make([]byte, tortureTupleSize)
	want := make([]byte, tortureTupleSize)
	for ki := 0; ki < t.opts.Keys; ki++ {
		key := uint64(ki) + 1
		if err := tb.Read(ctx, txn, key, buf); err != nil {
			t.violate("cycle %d: key %d unreadable after recovery: %v", c, key, err)
			continue
		}
		seq := binary.LittleEndian.Uint64(buf[:8])
		if seq != t.acked[ki] && seq != t.pending[ki] {
			t.violate("cycle %d: key %d recovered seq %d, want %d (acked) or %d (in flight)",
				c, key, seq, t.acked[ki], t.pending[ki])
			continue
		}
		tortureFill(want, key, seq)
		if !bytesEqual(buf, want) {
			t.violate("cycle %d: key %d seq %d has a torn/garbled payload", c, key, seq)
			continue
		}
		t.acked[ki] = seq
		t.pending[ki] = noSeq
	}
	if err := txn.Commit(ctx); err != nil {
		t.violate("cycle %d: verification txn commit: %v", c, err)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tortureFill writes the deterministic tuple image for (key, seq): the seq
// word followed by an xorshift stream seeded from both, so any torn or
// cross-wired recovery shows up as a payload mismatch.
func tortureFill(buf []byte, key, seq uint64) {
	binary.LittleEndian.PutUint64(buf[:8], seq)
	x := key*0x9E3779B97F4A7C15 ^ seq*0xBF58476D1CE4E5B9 | 1
	for i := 8; i < len(buf); i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// DegradedOpts configures the two-tier degradation run.
type DegradedOpts struct {
	// Workers and OpsPerWorker size the YCSB run (defaults 4 × 600).
	Workers, OpsPerWorker int
	// FailAfterWrites kills the NVM data arena permanently after that many
	// checked writes (default 300), which lands mid-run.
	FailAfterWrites int64
	// DBBytes sizes the YCSB table (default 1 MB).
	DBBytes int64
	Seed    uint64
}

func (o DegradedOpts) withDefaults() DegradedOpts {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.OpsPerWorker <= 0 {
		o.OpsPerWorker = 600
	}
	if o.FailAfterWrites <= 0 {
		o.FailAfterWrites = 300
	}
	if o.DBBytes <= 0 {
		o.DBBytes = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 0xDE64
	}
	return o
}

// DegradedResult summarizes a degradation run.
type DegradedResult struct {
	Committed, Aborted int64
	OpErrors           int64 // ops that failed during or after the tier loss
	TailCommits        int64 // commits after degradation was observed
	Degraded           bool  // the manager collapsed to two tiers
	Stats              core.Stats
}

// Degraded runs YCSB-WH on a three-tier hierarchy whose NVM data arena fails
// permanently mid-run, and verifies the manager collapses to two-tier
// DRAM–SSD mode and keeps committing. The WAL buffer lives on a separate
// (healthy) NVM DIMM, so logging — and therefore durability — survives the
// data-tier loss.
func Degraded(opts DegradedOpts) (*DegradedResult, error) {
	o := opts.withDefaults()

	ssdDev := device.New(device.SSDParams)
	disk := ssd.NewMem(ssdDev)
	nvmDev := device.New(device.NVMParams)
	inj := device.NewInjector(device.FaultConfig{Seed: o.Seed, FailAfterWrites: o.FailAfterWrites})
	nvmDev.SetFaults(inj)
	dataPM := pmem.New(pmem.Options{Size: o.DBBytes / 2, Device: nvmDev})
	walPM := pmem.New(pmem.Options{Size: 1 << 20, Device: device.New(device.NVMParams)})

	bm, err := core.New(core.Config{
		DRAMBytes: o.DBBytes / 8,
		NVMBytes:  o.DBBytes / 2,
		Policy:    policy.SpitfireEager,
		SSD:       disk,
		PMem:      dataPM,
		Cleaner:   core.CleanerConfig{Enable: true},
	})
	if err != nil {
		return nil, err
	}
	defer bm.Close()
	w, err := wal.New(wal.Options{Buffer: walPM, Store: wal.NewMemLog(ssdDev)})
	if err != nil {
		return nil, err
	}
	db, err := engine.Open(engine.Options{BM: bm, WAL: w})
	if err != nil {
		return nil, err
	}
	wl, err := ycsb.Setup(db, ycsb.RecordsForBytes(o.DBBytes), ycsb.DefaultTheta)
	if err != nil {
		return nil, err
	}

	res := &DegradedResult{}
	var opErrs, tail atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < o.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wk := wl.NewWorker(o.Seed + uint64(wi)*0x9E37)
			for i := 0; i < o.OpsPerWorker; i++ {
				ok, err := wk.Op(ycsb.WriteHeavy)
				if err != nil {
					// The tier loss surfaces as typed I/O errors on the ops
					// that were touching NVM; degradation reroutes the rest.
					opErrs.Add(1)
					continue
				}
				if ok && bm.NVMDegraded() {
					tail.Add(1)
				}
			}
			atomic.AddInt64(&res.Committed, wk.Committed)
			atomic.AddInt64(&res.Aborted, wk.Aborted)
		}(wi)
	}
	wg.Wait()
	res.OpErrors = opErrs.Load()
	res.TailCommits = tail.Load()
	res.Degraded = bm.NVMDegraded()
	res.Stats = bm.Stats()
	if !res.Degraded {
		return res, errors.New("harness: NVM tier never degraded (FailAfterWrites too high for the run?)")
	}
	if res.TailCommits == 0 {
		return res, errors.New("harness: no commits completed in two-tier degraded mode")
	}
	p := bm.Policy()
	if p.Nr != 0 || p.Nw != 0 {
		return res, fmt.Errorf("harness: degraded policy still routes to NVM: Nr=%v Nw=%v", p.Nr, p.Nw)
	}
	return res, nil
}
