package harness

import (
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestRunProducesThroughput(t *testing.T) {
	e, err := NewEnv(EnvConfig{
		DRAMBytes: 4 * MB,
		NVMBytes:  16 * MB,
		Policy:    policy.SpitfireLazy,
		Workload:  YCSBBA,
		DBBytes:   8 * MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Warmup(2, 500, 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(2, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.ElapsedSec <= 0 {
		t.Fatal("virtual time did not advance")
	}
	if res.LatencyP50Ns <= 0 || res.LatencyP99Ns < res.LatencyP50Ns {
		t.Fatalf("latency percentiles implausible: p50=%d p99=%d", res.LatencyP50Ns, res.LatencyP99Ns)
	}
	if res.LatencyMeanNs <= 0 {
		t.Fatal("mean latency missing")
	}
	t.Logf("throughput = %.0f ops/s, p50 = %d ns, p99 = %d ns, inclusivity = %.3f, nvmW = %d KB, ssdR = %d KB",
		res.Throughput, res.LatencyP50Ns, res.LatencyP99Ns, res.Inclusivity, res.NVMBytesWritten/1024, res.SSDBytesRead/1024)
}

func TestTPCCEnvRuns(t *testing.T) {
	e, err := NewEnv(EnvConfig{
		DRAMBytes: 4 * MB,
		NVMBytes:  16 * MB,
		Policy:    policy.SpitfireLazy,
		Workload:  TPCC,
		DBBytes:   2 * MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(2, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatalf("no TPC-C transactions committed: %+v", res)
	}
	t.Logf("tpcc throughput = %.0f txn/s (aborted %d)", res.Throughput, res.Aborted)
}

// TestLazyBeatsEagerOnUncachedReads reproduces the paper's headline §6.3
// result in miniature: when the working set exceeds DRAM but fits in NVM,
// the lazy policy (D = 0.01) outperforms eager migration (D = 1).
func TestLazyBeatsEagerOnUncachedReads(t *testing.T) {
	run := func(d float64) float64 {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: 2 * MB,
			NVMBytes:  16 * MB,
			Policy:    policy.Policy{Dr: d, Dw: d, Nr: 1, Nw: 1},
			Workload:  YCSBRO,
			DBBytes:   12 * MB,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Warmup(4, 2000, 7); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(4, 3000, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	lazy, eager := run(0.01), run(1)
	t.Logf("lazy = %.0f ops/s, eager = %.0f ops/s (ratio %.2f)", lazy, eager, lazy/eager)
	if lazy <= eager {
		t.Fatalf("lazy (%.0f) did not beat eager (%.0f) on an uncachable read-only workload", lazy, eager)
	}
}

func TestMemoryModeEnv(t *testing.T) {
	e, err := NewEnv(EnvConfig{
		DRAMBytes:      8 * MB,
		MemoryModeDRAM: 2 * MB,
		Policy:         policy.Policy{Dr: 1, Dw: 1},
		Workload:       YCSBRO,
		DBBytes:        6 * MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(2, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("memory-mode run committed nothing")
	}
	// Memory mode must have generated NVM traffic (cache misses) even
	// though the BM has no NVM tier.
	if res.NVMBytesRead == 0 && res.NVMBytesWritten == 0 {
		t.Log("note: all accesses hit the memory-mode DRAM cache")
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := NewEnv(EnvConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	e, err := NewEnv(EnvConfig{DRAMBytes: 2 * MB, Policy: policy.Policy{Dr: 1, Dw: 1}, Workload: YCSBRO, DBBytes: MB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0, 10, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
}

// TestSingleWorkerDeterminism checks the simulator claim: identical
// configuration and seed produce bit-identical single-worker results.
func TestSingleWorkerDeterminism(t *testing.T) {
	run := func() PointResult {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: 2 * MB,
			NVMBytes:  8 * MB,
			Policy:    policy.SpitfireLazy,
			Workload:  YCSBBA,
			DBBytes:   6 * MB,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Warmup(1, 1500, 3); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(1, 2500, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Aborted != b.Aborted {
		t.Fatalf("op counts diverged: %+v vs %+v", a, b)
	}
	if a.ElapsedSec != b.ElapsedSec || a.Throughput != b.Throughput {
		t.Fatalf("virtual time diverged: %v/%v vs %v/%v",
			a.ElapsedSec, a.Throughput, b.ElapsedSec, b.Throughput)
	}
	if a.NVMBytesWritten != b.NVMBytesWritten || a.SSDBytesRead != b.SSDBytesRead {
		t.Fatalf("device traffic diverged: %+v vs %+v", a, b)
	}
	if a.Stats != b.Stats {
		t.Fatalf("buffer stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
}
