package harness

import (
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestWorkloadKindStrings(t *testing.T) {
	want := map[WorkloadKind]string{
		YCSBRO: "YCSB-RO", YCSBBA: "YCSB-BA", YCSBWH: "YCSB-WH", TPCC: "TPC-C",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(WorkloadKind(9).String(), "9") {
		t.Fatal("unknown workload string unhelpful")
	}
	if YCSBRO.mix().ReadPct != 100 || YCSBWH.mix().ReadPct != 10 {
		t.Fatal("mix mapping wrong")
	}
}

func TestOptsScaling(t *testing.T) {
	full := Opts{}
	quick := Opts{Quick: true}
	if full.sz(100) != 100*MB {
		t.Fatalf("full sz(100) = %d", full.sz(100))
	}
	if quick.sz(100) != 25*MB {
		t.Fatalf("quick sz(100) = %d", quick.sz(100))
	}
	// Tiny sizes are floored, not zeroed.
	if quick.sz(0.1) < 64*1024 {
		t.Fatalf("quick sz(0.1) = %d", quick.sz(0.1))
	}
	if full.ops(8000) != 8000 || quick.ops(8000) != 1000 {
		t.Fatalf("ops scaling: %d / %d", full.ops(8000), quick.ops(8000))
	}
	if quick.ops(100) != 200 {
		t.Fatalf("quick ops floor: %d", quick.ops(100))
	}
	if full.seed() != 1 || (Opts{Seed: 9}).seed() != 9 {
		t.Fatal("seed defaulting wrong")
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell", "1"}, {"b", "2"}},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header line, separator, two rows + title line.
	if len(lines) != 4+1 {
		t.Fatalf("rendered %d lines: %q", len(lines), lines)
	}
	// All data lines equal width (alignment).
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned output:\n%s", sb.String())
	}
}

func TestWarmupOpsSizing(t *testing.T) {
	e, err := NewEnv(EnvConfig{
		DRAMBytes: 2 * MB, NVMBytes: 8 * MB,
		Policy:   policyFor(t),
		Workload: YCSBRO, DBBytes: 4 * MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := e.BM.DRAMFrames() + e.BM.NVMFrames()
	got := e.WarmupOps(4, 0)
	if got*4 < 8*frames-4 {
		t.Fatalf("warmup %d x 4 too small for %d frames", got, frames)
	}
	// The requested floor wins when larger.
	if e.WarmupOps(4, 10_000) < 10_000 {
		t.Fatal("requested floor ignored")
	}
	// The cap binds for huge requests.
	if e.WarmupOps(1, 5_000_000) > 1_000_000 {
		t.Fatal("warmup cap ignored")
	}
	// A lazy Nr scales the warm-up so the NVM buffer can actually fill.
	lazyEnv, err := NewEnv(EnvConfig{
		DRAMBytes: 2 * MB, NVMBytes: 8 * MB,
		Policy:   policy.Policy{Dr: 1, Dw: 1, Nr: 0.05, Nw: 0.05},
		Workload: YCSBRO, DBBytes: 4 * MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lazyEnv.WarmupOps(4, 0) <= e.WarmupOps(4, 0) {
		t.Fatal("lazy Nr did not scale the warm-up")
	}
}

func policyFor(t *testing.T) policy.Policy {
	t.Helper()
	return policy.SpitfireEager
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{
		ID:     "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, with comma"}, {"3", "4"}},
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n1,\"two, with comma\"\n3,4\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}
