package harness

import "testing"

// TestTortureSmoke runs a short randomized crash-recover torture: every
// cycle kills the machine at an injected crash point, recovers, audits the
// buffer manager's structure and checks that no acknowledged write was lost
// and no torn or phantom value surfaced.
func TestTortureSmoke(t *testing.T) {
	opts := TortureOpts{Cycles: 8, Workers: 3, Keys: 512, OpsPerCycle: 60, Seed: 0x7E57}
	if testing.Short() {
		opts.Cycles = 3
	}
	res, err := Torture(opts)
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if res.Cycles != opts.Cycles {
		t.Errorf("completed %d cycles, want %d", res.Cycles, opts.Cycles)
	}
	if res.Commits == 0 {
		t.Error("no transactions committed across the torture run")
	}
	if res.MidRunTrips == 0 {
		t.Error("no cycle crashed mid-workload; crash points are not being exercised")
	}
	t.Logf("cycles=%d commits=%d opErrs=%d midRunTrips=%d torn=%d recovery=%+v",
		res.Cycles, res.Commits, res.OpErrors, res.MidRunTrips, res.TornWrites, res.Recovery)
}

// TestTortureWithTransients layers transient read/write/torn faults on the
// NVM data arena on top of the crash points, exercising the retry paths
// under the same invariants.
func TestTortureWithTransients(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Torture(TortureOpts{
		Cycles: 5, Workers: 3, Keys: 512, OpsPerCycle: 60,
		Seed: 0xFA17, TransientProb: 0.01,
	})
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestTortureFineGrained runs the crash-recover torture with per-unit
// (cache-line-grained) loading on, so crashes and transient faults land
// mid-unit-fill instead of on whole-page copies.
func TestTortureFineGrained(t *testing.T) {
	opts := TortureOpts{
		Cycles: 5, Workers: 3, Keys: 512, OpsPerCycle: 60,
		Seed: 0xF19E, FineGrained: true, TransientProb: 0.01,
	}
	if testing.Short() {
		opts.Cycles = 2
	}
	res, err := Torture(opts)
	if err != nil {
		t.Fatalf("fine-grained torture: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	if res.Commits == 0 {
		t.Error("no transactions committed across the fine-grained torture run")
	}
}

// TestDegradedRun fails the NVM data arena permanently mid-run and checks
// the manager collapses to two-tier DRAM-SSD mode and keeps committing.
func TestDegradedRun(t *testing.T) {
	res, err := Degraded(DegradedOpts{Workers: 3, OpsPerWorker: 300, FailAfterWrites: 200, Seed: 2})
	if err != nil {
		t.Fatalf("degraded run: %v (result %+v)", err, res)
	}
	if !res.Degraded {
		t.Fatal("NVM tier did not degrade")
	}
	if res.TailCommits == 0 {
		t.Fatal("no commits in degraded mode")
	}
	if res.Stats.NVMDegraded == 0 {
		t.Error("NVMDegraded stat not recorded")
	}
	t.Logf("committed=%d aborted=%d opErrs=%d tail=%d orphaned=%d",
		res.Committed, res.Aborted, res.OpErrors, res.TailCommits, res.Stats.NVMOrphanedPages)
}
