package harness

import (
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// ExtraAdmit is an extension beyond the paper: it pits the two mechanisms
// that decide which dirty DRAM evictees earn an NVM frame against each
// other on a write-heavy workload:
//
//   - HyMem's NwAdmissionQueue (a page must be evicted twice before it is
//     admitted), with inline foreground eviction;
//   - the background cleaner's always-admit bias (every dirty page the
//     cleaner writes back is installed in NVM, skipping the Nw coin), with
//     probabilistic Nw on the residual foreground path;
//   - plain probabilistic Nw with no cleaner, as the control.
//
// The useful-admission signal is the hit rate *of the admitted frames*:
// HitNVMCleanerAdmitted/CleanerAdmittedNVM for the cleaner's bias vs
// HitNVM/(SSDToNVM+DRAMToNVM) overall. All numbers are read through the
// observability layer's counter snapshot (Env.ObsCounters) rather than the
// raw Stats struct, so the experiment doubles as an end-to-end check that
// the exposition names stay wired.
func ExtraAdmit(o Opts) (*Table, error) {
	workers := 4
	ops := o.ops(2500)

	lazyQueue := policy.SpitfireLazy
	lazyQueue.NwMode = policy.NwAdmissionQueue

	settings := []struct {
		name    string
		pol     policy.Policy
		cleaner core.CleanerConfig
	}{
		{"Nw probabilistic, no cleaner (control)", policy.SpitfireLazy, core.CleanerConfig{}},
		{"Nw admission queue (HyMem), no cleaner", lazyQueue, core.CleanerConfig{}},
		{"cleaner always-admit bias", policy.SpitfireLazy, core.CleanerConfig{Enable: true}},
	}

	t := &Table{
		ID:    "extra-admit",
		Title: "NVM admission: HyMem queue vs cleaner always-admit bias on YCSB-WH (beyond the paper)",
		Header: []string{"admission", "kops/s", "NVM installs", "NVM hits",
			"hit/install", "cleaner installs", "cleaner-frame hits"},
	}
	for _, s := range settings {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: o.sz(2.5),
			NVMBytes:  o.sz(10),
			Policy:    s.pol,
			Workload:  YCSBWH,
			DBBytes:   o.sz(40),
			Cleaner:   s.cleaner,
		})
		if err != nil {
			return nil, err
		}
		res, err := measure(e, workers, 1500, ops, o.seed())
		if err != nil {
			e.Close()
			return nil, err
		}
		snap := counterMap(e.ObsCounters())
		e.Close()

		installs := snap["mig_ssd_to_nvm"] + snap["mig_dram_to_nvm"]
		hits := snap["hit_nvm"]
		ratio := "-"
		if installs > 0 {
			ratio = fmt.Sprintf("%.2f", float64(hits)/float64(installs))
		}
		st := res.Stats
		t.Rows = append(t.Rows, []string{
			s.name,
			kops(res.Throughput),
			fmt.Sprintf("%d", installs),
			fmt.Sprintf("%d", hits),
			ratio,
			fmt.Sprintf("%d", st.CleanerAdmittedNVM),
			fmt.Sprintf("%d", st.HitNVMCleanerAdmitted),
		})
	}
	return t, nil
}

// counterMap indexes an ObsCounters snapshot by name.
func counterMap(samples []obs.Sample) map[string]int64 {
	m := make(map[string]int64, len(samples))
	for _, s := range samples {
		m[s.Name] = s.Value
	}
	return m
}
