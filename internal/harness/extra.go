package harness

import (
	"fmt"

	"github.com/spitfire-db/spitfire/internal/anneal"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// ExtraWear is an extension beyond the paper: §6.3 closes by noting that
// "the optimal policy must be chosen depending on the performance
// requirements and write endurance characteristics of NVM", but leaves the
// choice manual. This experiment automates it: the simulated-annealing
// tuner runs with the wear-aware cost function cost = γ/T + λ·W/T and the
// endurance weight λ is swept. Higher λ should push the converged policy
// toward fewer NVM writes at some throughput cost — an automated version of
// the Figure 8 trade-off.
func ExtraWear(o Opts) (*Table, error) {
	epochs := 60
	if o.Quick {
		epochs = 25
	}
	workers := 8
	epochOps := o.ops(1200)

	t := &Table{
		ID:     "extra-wear",
		Title:  "Wear-aware adaptive tuning (beyond the paper): λ sweep on YCSB-BA",
		Header: []string{"lambda", "policy found", "kops/s", "NVM MB/s written"},
	}
	for _, lambda := range []float64{0, 5e-8, 1e-6} {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: o.sz(2.5),
			NVMBytes:  o.sz(10),
			Policy:    policy.SpitfireEager,
			Workload:  YCSBBA,
			DBBytes:   o.sz(20),
		})
		if err != nil {
			return nil, err
		}
		if err := e.Warmup(workers, e.WarmupOps(workers, o.ops(1500)), o.seed()); err != nil {
			return nil, err
		}
		tn := anneal.New(anneal.Options{
			Initial:   policy.SpitfireEager,
			LockstepD: true,
			LockstepN: true,
			Seed:      o.seed(),
			OnEpoch:   e.PolicyStepHook(),
		})
		cost := anneal.WearAwareCost{Lambda: lambda}
		cand := tn.Propose()

		// Track the wear profile of the best-cost epoch.
		bestCost := -1.0
		var bestTput, bestWearMBs float64
		var bestPol policy.Policy
		for ep := 0; ep < epochs; ep++ {
			if err := e.SetPolicy(cand); err != nil {
				return nil, err
			}
			res, err := e.Run(workers, epochOps, o.seed()+uint64(ep)*17)
			if err != nil {
				return nil, err
			}
			wearRate := 0.0
			if res.ElapsedSec > 0 {
				wearRate = float64(res.NVMBytesWritten) / res.ElapsedSec
			}
			c := cost.Cost(res.Throughput, wearRate)
			if bestCost < 0 || c < bestCost {
				bestCost = c
				bestTput = res.Throughput
				bestWearMBs = wearRate / float64(MB)
				bestPol = cand
			}
			cand = tn.ObserveWear(cost, res.Throughput, wearRate)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", lambda),
			fmt.Sprintf("D=%g N=%g", bestPol.Dr, bestPol.Nr),
			kops(bestTput),
			fmt.Sprintf("%.1f", bestWearMBs),
		})
	}
	return t, nil
}
