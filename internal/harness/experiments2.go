package harness

import (
	"fmt"

	"github.com/spitfire-db/spitfire/internal/anneal"
	"github.com/spitfire-db/spitfire/internal/design"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// ---- Figure 10 --------------------------------------------------------------

// Fig10 runs the adaptive data-migration experiment (§6.4): starting from
// the eager policy, the simulated-annealing tuner adjusts ⟨D, N⟩ every
// epoch using the measured throughput, and should converge near the lazy
// optimum without manual tuning. Configuration mirrors the paper: 2.5 GB
// DRAM + 10 GB NVM, α = 0.9, γ = 10, T0 = 800, Tmin = 8e-5.
func Fig10(o Opts) (*Table, error) {
	epochs := 100
	if o.Quick {
		epochs = 30
	}
	workers := 8
	epochOps := o.ops(1200)

	t := &Table{
		ID:     "fig10",
		Title:  "Adaptive data migration: throughput (kops/s) per tuning epoch",
		Header: []string{"epoch", "YCSB-RO", "YCSB-RO policy", "YCSB-BA", "YCSB-BA policy"},
	}

	type series struct {
		tput []float64
		pols []policy.Policy
	}
	var out [2]series
	for i, wl := range []WorkloadKind{YCSBRO, YCSBBA} {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: o.sz(2.5),
			NVMBytes:  o.sz(10),
			Policy:    policy.SpitfireEager,
			Workload:  wl,
			DBBytes:   o.sz(20),
		})
		if err != nil {
			return nil, err
		}
		if err := e.Warmup(workers, o.ops(2000), o.seed()); err != nil {
			return nil, err
		}
		tn := anneal.New(anneal.Options{
			Initial:   policy.SpitfireEager,
			LockstepD: true,
			LockstepN: true,
			Seed:      o.seed(),
			OnEpoch:   e.PolicyStepHook(),
		})
		cand := tn.Propose()
		for ep := 0; ep < epochs; ep++ {
			if err := e.SetPolicy(cand); err != nil {
				return nil, err
			}
			res, err := e.Run(workers, epochOps, o.seed()+uint64(ep)*13)
			if err != nil {
				return nil, err
			}
			out[i].tput = append(out[i].tput, res.Throughput)
			out[i].pols = append(out[i].pols, cand)
			cand = tn.Observe(res.Throughput)
		}
	}
	step := epochs / 20
	if step < 1 {
		step = 1
	}
	for ep := 0; ep < epochs; ep += step {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ep),
			kops(out[0].tput[ep]), fmt.Sprintf("D=%g N=%g", out[0].pols[ep].Dr, out[0].pols[ep].Nr),
			kops(out[1].tput[ep]), fmt.Sprintf("D=%g N=%g", out[1].pols[ep].Dr, out[1].pols[ep].Nr),
		})
	}
	// Summary row: first vs best epoch.
	best0, best1 := 0.0, 0.0
	for _, v := range out[0].tput {
		if v > best0 {
			best0 = v
		}
	}
	for _, v := range out[1].tput {
		if v > best1 {
			best1 = v
		}
	}
	t.Rows = append(t.Rows, []string{"best", kops(best0),
		fmt.Sprintf("(+%.0f%% over eager)", 100*(best0/out[0].tput[0]-1)),
		kops(best1),
		fmt.Sprintf("(+%.0f%% over eager)", 100*(best1/out[1].tput[0]-1)),
	})
	return t, nil
}

// ---- Figure 11 --------------------------------------------------------------

// Fig11 sweeps the loading-unit size for HyMem's cache-line-grained loading
// on Optane (§6.5): 64 B units suffer I/O amplification against the 256 B
// media block, so throughput peaks at 256 B.
func Fig11(o Opts) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "HyMem throughput (kops/s) and NVM media reads vs loading unit (YCSB-RO)",
		Header: []string{"unit (B)", "throughput", "NVM read MB"},
	}
	for _, unit := range []int{64, 128, 256, 512} {
		e, err := NewEnv(EnvConfig{
			DRAMBytes:   o.sz(8),
			NVMBytes:    o.sz(32),
			Policy:      policy.Hymem,
			FineGrained: true,
			LoadingUnit: unit,
			Workload:    YCSBRO,
			DBBytes:     o.sz(20),
		})
		if err != nil {
			return nil, err
		}
		res, err := measure(e, 8, o.ops(3000), o.ops(6000), o.seed())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", unit), kops(res.Throughput), mbs(res.NVMBytesRead),
		})
	}
	return t, nil
}

// ---- Figure 12 --------------------------------------------------------------

// Fig12 is the ablation study of §6.5: HyMem's two auxiliary optimizations
// (fine-grained loading, then mini pages) are added incrementally under the
// three migration policies of Table 3, on YCSB-RO and TPC-C.
func Fig12(o Opts) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Ablation (kops/s): +fine-grained loading, +mini pages across migration policies",
		Header: []string{"workload", "policy", "none", "+fine-grained", "+mini page"},
	}
	pols := []struct {
		name string
		p    policy.Policy
	}{
		{"Hymem", policy.Hymem},
		{"Spf-Eager", policy.SpitfireEager},
		{"Spf-Lazy", policy.SpitfireLazy},
	}
	for _, wl := range []WorkloadKind{YCSBRO, TPCC} {
		for _, pc := range pols {
			row := []string{wl.String(), pc.name}
			for _, step := range []struct {
				fg, mini bool
			}{{false, false}, {true, false}, {true, true}} {
				e, err := NewEnv(EnvConfig{
					DRAMBytes:   o.sz(8),
					NVMBytes:    o.sz(32),
					Policy:      pc.p,
					FineGrained: step.fg,
					LoadingUnit: 256,
					MiniPages:   step.mini,
					Workload:    wl,
					DBBytes:     o.sz(20),
				})
				if err != nil {
					return nil, err
				}
				res, err := measure(e, 8, o.ops(2500), o.ops(5000), o.seed())
				if err != nil {
					return nil, err
				}
				row = append(row, kops(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ---- Figure 13 --------------------------------------------------------------

// Fig13 compares the NVM write volume of HyMem's queue-gated policy against
// Spitfire-Lazy (§6.5): the lazy policy trades more NVM writes for runtime
// performance. Fine-grained loading is enabled for both, as in the paper.
func Fig13(o Opts) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "NVM write volume (paper-GB = simulated MB): HyMem vs Spitfire-Lazy",
		Header: []string{"workload", "Hymem", "Spf-Lazy", "ratio"},
	}
	for _, wl := range []WorkloadKind{YCSBRO, YCSBBA, YCSBWH} {
		row := []string{wl.String()}
		var vols [2]int64
		for i, p := range []policy.Policy{policy.Hymem, policy.SpitfireLazy} {
			e, err := NewEnv(EnvConfig{
				DRAMBytes:   o.sz(8),
				NVMBytes:    o.sz(32),
				Policy:      p,
				FineGrained: true,
				LoadingUnit: 256,
				Workload:    wl,
				DBBytes:     o.sz(20),
			})
			if err != nil {
				return nil, err
			}
			// Write volume is measured from cold start: the buffer
			// population phase is part of each policy's NVM wear.
			res, err := e.Run(8, o.ops(7500), o.seed())
			if err != nil {
				return nil, err
			}
			vols[i] = res.NVMBytesWritten
			row = append(row, mbs(res.NVMBytesWritten))
		}
		ratio := 0.0
		if vols[0] > 0 {
			ratio = float64(vols[1]) / float64(vols[0])
		}
		row = append(row, fmt.Sprintf("%.2fx", ratio))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ---- Figure 14 --------------------------------------------------------------

// Fig14 is the storage-system design grid search of §6.6: DRAM
// {0,4,8,16,32} × NVM {0,40,80,160} over a 200 GB SSD, 100 GB database,
// skew 0.5, eight workers, Spitfire-Lazy on three-tier candidates. Cells
// report throughput/cost (ops/s/$).
func Fig14(o Opts) ([]*Table, error) {
	dramSizes := []float64{0, 4, 8, 16, 32}
	nvmSizes := []float64{0, 40, 80, 160}

	costT := &Table{
		ID:     "fig14a",
		Title:  "Storage system cost ($, Table 1 prices, 200 GB SSD)",
		Header: []string{"DRAM\\NVM"},
	}
	for _, n := range nvmSizes {
		costT.Header = append(costT.Header, fmt.Sprintf("%g", n))
	}
	for _, d := range dramSizes {
		row := []string{fmt.Sprintf("%g", d)}
		for _, n := range nvmSizes {
			row = append(row, fmt.Sprintf("%.0f", design.Cost(design.Hierarchy{DRAMGB: d, NVMGB: n, SSDGB: 200})))
		}
		costT.Rows = append(costT.Rows, row)
	}
	tables := []*Table{costT}

	for _, wl := range []WorkloadKind{YCSBRO, YCSBBA, YCSBWH} {
		t := &Table{
			ID:     "fig14-" + wl.String(),
			Title:  fmt.Sprintf("Throughput/cost (ops/s/$) heat map, %s", wl),
			Header: append([]string{"DRAM\\NVM"}, costT.Header[1:]...),
		}
		var best design.Result
		for _, d := range dramSizes {
			row := []string{fmt.Sprintf("%g", d)}
			for _, n := range nvmSizes {
				if d == 0 && n == 0 {
					row = append(row, "-")
					continue
				}
				e, err := NewEnv(EnvConfig{
					DRAMBytes: o.sz(d),
					NVMBytes:  o.sz(n),
					Policy:    policy.SpitfireLazy,
					Workload:  wl,
					DBBytes:   o.sz(100),
					Theta:     0.5,
				})
				if err != nil {
					return nil, err
				}
				res, err := measure(e, 8, o.ops(2000), o.ops(4000), o.seed())
				if err != nil {
					return nil, err
				}
				h := design.Hierarchy{DRAMGB: d, NVMGB: n, SSDGB: 200}
				pp := res.Throughput / design.Cost(h)
				if pp > best.PerfPrice {
					best = design.Result{Hierarchy: h, Throughput: res.Throughput,
						Cost: design.Cost(h), PerfPrice: pp}
				}
				row = append(row, fmt.Sprintf("%.0f", pp))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, []string{"best", best.Hierarchy.String(),
			fmt.Sprintf("%.0f ops/s/$", best.PerfPrice), "", ""})
		tables = append(tables, t)
	}
	return tables, nil
}

// ---- Figure 15 --------------------------------------------------------------

// Fig15 sweeps the database size from cacheable to far-beyond-buffer for
// five equi-cost configurations (§6.7): three-tier (20+60 GB buffers) under
// HyMem / Spitfire-Eager / Spitfire-Lazy, a 46 GB DRAM-SSD hierarchy, and a
// 104 GB NVM-SSD hierarchy.
func Fig15(o Opts) (*Table, error) {
	sizes := []float64{5, 35, 70, 105, 140}
	if o.Quick {
		sizes = []float64{5, 70, 140}
	}
	configs := []struct {
		name string
		cfg  func(wl WorkloadKind, db int64) EnvConfig
	}{
		{"Hymem", func(wl WorkloadKind, db int64) EnvConfig {
			return EnvConfig{DRAMBytes: o.sz(20), NVMBytes: o.sz(60), Policy: policy.Hymem,
				FineGrained: true, LoadingUnit: 256, MiniPages: true, Workload: wl, DBBytes: db}
		}},
		{"Spf-Eager", func(wl WorkloadKind, db int64) EnvConfig {
			return EnvConfig{DRAMBytes: o.sz(20), NVMBytes: o.sz(60), Policy: policy.SpitfireEager,
				FineGrained: true, LoadingUnit: 256, MiniPages: true, Workload: wl, DBBytes: db}
		}},
		{"Spf-Lazy", func(wl WorkloadKind, db int64) EnvConfig {
			return EnvConfig{DRAMBytes: o.sz(20), NVMBytes: o.sz(60), Policy: policy.SpitfireLazy,
				FineGrained: true, LoadingUnit: 256, MiniPages: true, Workload: wl, DBBytes: db}
		}},
		{"DRAM-SSD", func(wl WorkloadKind, db int64) EnvConfig {
			return EnvConfig{DRAMBytes: o.sz(46), Policy: policy.Policy{Dr: 1, Dw: 1}, Workload: wl, DBBytes: db}
		}},
		{"NVM-SSD", func(wl WorkloadKind, db int64) EnvConfig {
			return EnvConfig{NVMBytes: o.sz(104), Policy: policy.SpitfireEager, Workload: wl, DBBytes: db}
		}},
	}

	t := &Table{
		ID:     "fig15",
		Title:  "Throughput (kops/s) vs database size (paper-GB) for five equi-cost configurations",
		Header: []string{"workload", "config"},
	}
	for _, s := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%g", s))
	}
	for _, wl := range []WorkloadKind{YCSBRO, YCSBBA, YCSBWH, TPCC} {
		for _, c := range configs {
			row := []string{wl.String(), c.name}
			for _, s := range sizes {
				e, err := NewEnv(c.cfg(wl, o.sz(s)))
				if err != nil {
					return nil, err
				}
				res, err := measure(e, 8, o.ops(2000), o.ops(4000), o.seed())
				if err != nil {
					return nil, err
				}
				row = append(row, kops(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ---- registry ---------------------------------------------------------------

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name        string
	Description string
	Run         func(Opts) ([]*Table, error)
}

func single(f func(Opts) (*Table, error)) func(Opts) ([]*Table, error) {
	return func(o Opts) ([]*Table, error) {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiments lists every reproduced table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Device characteristics (calibration constants)", single(Table1)},
		{"fig5", "Equi-cost NVM-SSD vs memory-mode DRAM-SSD across DB sizes (§6.2)", single(Fig5)},
		{"table2", "Inclusivity ratio across D and N sweeps (§3.3)", single(Table2)},
		{"fig6", "Throughput vs DRAM migration probability D (§6.3)", single(Fig6)},
		{"fig7", "Throughput vs NVM migration probability N (§6.3)", single(Fig7)},
		{"fig8", "NVM write volume vs N (§6.3)", single(Fig8)},
		{"fig9", "Optimal D vs DRAM:NVM capacity ratio (§6.3)", single(Fig9)},
		{"fig10", "Adaptive data migration via simulated annealing (§6.4)", single(Fig10)},
		{"fig11", "Loading-unit granularity on Optane (§6.5)", single(Fig11)},
		{"fig12", "Ablation of HyMem's optimizations (§6.5)", single(Fig12)},
		{"fig13", "NVM device lifetime: HyMem vs Spitfire-Lazy (§6.5)", single(Fig13)},
		{"fig14", "Storage-system design grid search (§6.6)", Fig14},
		{"fig15", "Database-size sweep over five configurations (§6.7)", single(Fig15)},
		{"extra-wear", "Wear-aware adaptive tuning, λ sweep (extension beyond the paper)", single(ExtraWear)},
		{"extra-cleaner", "Background cleaner watermark/batch sweep (extension beyond the paper)", single(ExtraCleaner)},
		{"extra-admit", "NVM admission: HyMem queue vs cleaner always-admit bias (extension beyond the paper)", single(ExtraAdmit)},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
