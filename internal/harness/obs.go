package harness

import (
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/anneal"
	"github.com/spitfire-db/spitfire/internal/obs"
)

// defaultObs is the process-wide fallback observability instance consulted
// by NewEnv when EnvConfig.Obs is nil. The cmd binaries install it once at
// startup (-obs / -trace flags) so every experiment the registry runs is
// observed without threading a pointer through each experiment function.
var defaultObs atomic.Pointer[obs.Obs]

// SetDefaultObs installs (or, with nil, clears) the process-wide default
// observability instance used by NewEnv when EnvConfig.Obs is unset.
func SetDefaultObs(o *obs.Obs) {
	if o == nil {
		defaultObs.Store(nil)
		return
	}
	defaultObs.Store(o)
}

// DefaultObs returns the instance installed with SetDefaultObs, or nil.
func DefaultObs() *obs.Obs { return defaultObs.Load() }

// PolicyStepHook returns an anneal.Options.OnEpoch callback that traces
// every annealing step as an EvPolicyStep event on a dedicated "tuner"
// ring (single-producer: the tuner runs on the coordinator goroutine
// between epochs). Returns nil — a valid no-op for anneal — when the Env
// has no observability attached.
func (e *Env) PolicyStepHook() func(anneal.EpochStep) {
	o := e.cfg.Obs
	if o == nil {
		return nil
	}
	ring := o.NewRing("tuner")
	return func(st anneal.EpochStep) {
		out := obs.OutSkipped
		if st.Accepted {
			out = obs.OutOK
		}
		ring.Emit(obs.Event{
			TS:      e.vbase.Load(),
			Type:    obs.EvPolicyStep,
			Outcome: out,
			Page:    obs.NoPage,
			Arg:     int64(st.Throughput),
		})
	}
}

// ObsCounters implements obs.Source: monotonic totals for the live
// exposition endpoints. The hit_* / miss_ssd names are load-bearing — the
// snapshot endpoint derives hit rates from them.
func (e *Env) ObsCounters() []obs.Sample {
	s := e.BM.Stats()
	out := []obs.Sample{
		{Name: "hit_dram", Value: s.HitDRAM},
		{Name: "hit_mini", Value: s.HitMini},
		{Name: "hit_nvm", Value: s.HitNVM},
		{Name: "miss_ssd", Value: s.MissSSD},
		{Name: "mig_nvm_to_dram", Value: s.NVMToDRAM},
		{Name: "mig_ssd_to_dram", Value: s.SSDToDRAM},
		{Name: "mig_ssd_to_nvm", Value: s.SSDToNVM},
		{Name: "mig_dram_to_nvm", Value: s.DRAMToNVM},
		{Name: "mig_dram_to_ssd", Value: s.DRAMToSSD},
		{Name: "mig_nvm_to_ssd", Value: s.NVMToSSD},
		{Name: "evict_dram", Value: s.EvictDRAM},
		{Name: "evict_mini", Value: s.EvictMini},
		{Name: "evict_nvm", Value: s.EvictNVM},
		{Name: "fg_unit_loads", Value: s.FGUnitLoads},
		{Name: "mini_promotions", Value: s.MiniPromotions},
		{Name: "cleaner_batches", Value: s.CleanerBatches},
		{Name: "cleaner_cleaned_dram", Value: s.CleanerCleanedDRAM},
		{Name: "cleaner_cleaned_nvm", Value: s.CleanerCleanedNVM},
		{Name: "cleaner_stalls", Value: s.CleanerStalls},
		{Name: "foreground_evicts", Value: s.ForegroundEvicts},
		{Name: "foreground_batch_cleaned", Value: s.ForegroundBatchCleaned},
		{Name: "io_retries", Value: s.IORetries},
		{Name: "io_give_ups", Value: s.IOGiveUps},
		{Name: "commits", Value: e.commits.Load()},
	}
	if e.nvmDev != nil {
		st := e.nvmDev.Stats()
		out = append(out,
			obs.Sample{Name: "nvm_bytes_read", Value: st.BytesRead},
			obs.Sample{Name: "nvm_bytes_written", Value: st.BytesWritten},
		)
	}
	if e.ssdDev != nil {
		st := e.ssdDev.Stats()
		out = append(out,
			obs.Sample{Name: "ssd_bytes_read", Value: st.BytesRead},
			obs.Sample{Name: "ssd_bytes_written", Value: st.BytesWritten},
		)
	}
	if w := e.DB.WAL(); w != nil {
		appends, flushes, commits := w.Stats()
		out = append(out,
			obs.Sample{Name: "wal_appends", Value: appends},
			obs.Sample{Name: "wal_flushes", Value: flushes},
			obs.Sample{Name: "wal_commits", Value: commits},
		)
	}
	return out
}

// ObsGauges implements obs.Source: instantaneous buffer-pool occupancy and
// the simulated-time frontier.
func (e *Env) ObsGauges() []obs.Sample {
	g := e.BM.PoolGauges()
	out := []obs.Sample{
		{Name: "dram_frames", Value: int64(g.DRAMFrames)},
		{Name: "dram_free_frames", Value: int64(g.DRAMFree)},
		{Name: "dram_used_frames", Value: int64(g.DRAMUsed)},
		{Name: "dram_dirty_frames", Value: int64(g.DRAMDirty)},
		{Name: "nvm_frames", Value: int64(g.NVMFrames)},
		{Name: "nvm_free_frames", Value: int64(g.NVMFree)},
		{Name: "nvm_used_frames", Value: int64(g.NVMUsed)},
		{Name: "nvm_dirty_frames", Value: int64(g.NVMDirty)},
		{Name: "virtual_time_ns", Value: e.vbase.Load()},
		{Name: "nvm_degraded", Value: e.BM.Stats().NVMDegraded},
	}
	if g.MiniFrames > 0 {
		out = append(out,
			obs.Sample{Name: "mini_frames", Value: int64(g.MiniFrames)},
			obs.Sample{Name: "mini_free_frames", Value: int64(g.MiniFree)},
			obs.Sample{Name: "mini_used_frames", Value: int64(g.MiniUsed)},
			obs.Sample{Name: "mini_dirty_frames", Value: int64(g.MiniDirty)},
		)
	}
	return out
}
