// Package memmode simulates Optane DC PMMs configured in *memory mode*
// (§2.2 and §6.2 of the paper): the DRAM DIMMs act as a hardware-managed,
// direct-mapped, write-back L4 cache in front of the (larger) NVM capacity,
// and software sees a single volatile memory device of NVM's size.
//
// The simulation operates at a configurable cache-line size (4 KB by
// default, coarse enough to keep the tag array small and fine enough to
// capture the capacity cliff in Figure 5):
//
//   - hit  → DRAM latency/bandwidth,
//   - miss → NVM fill (+ a write-back of the displaced line when dirty),
//     then DRAM-speed service of the access itself.
//
// The buffer manager treats a memory-mode device exactly like DRAM — which
// is the point: memory mode needs no software changes, but it cannot expose
// persistence, so Spitfire's app-direct configuration wins once that
// matters (§6.2).
package memmode

import (
	"sync"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// Device is a memory-mode "DRAM cache over NVM" cost model. It implements
// the same Read/Write charging interface as device.Device and is safe for
// concurrent use.
type Device struct {
	dram *device.Device
	nvm  *device.Device

	lineSize int64
	nSets    int64

	mu    sync.Mutex
	tags  []int64 // per set: which line index is cached (-1 = empty)
	dirty []bool
}

// Options configures the memory-mode device.
type Options struct {
	// DRAMBytes is the capacity of the hardware cache (the installed DRAM).
	DRAMBytes int64
	// LineSize is the cache-line granularity; defaults to 4096.
	LineSize int64
	// DRAM and NVM override the underlying cost models (nil = Table 1).
	DRAM, NVM *device.Device
}

// New creates a memory-mode device.
func New(opts Options) *Device {
	if opts.LineSize <= 0 {
		opts.LineSize = 4096
	}
	if opts.DRAM == nil {
		opts.DRAM = device.New(device.DRAMParams)
	}
	if opts.NVM == nil {
		opts.NVM = device.New(device.NVMParams)
	}
	nSets := opts.DRAMBytes / opts.LineSize
	if nSets < 1 {
		nSets = 1
	}
	d := &Device{
		dram:     opts.DRAM,
		nvm:      opts.NVM,
		lineSize: opts.LineSize,
		nSets:    nSets,
		tags:     make([]int64, nSets),
		dirty:    make([]bool, nSets),
	}
	for i := range d.tags {
		d.tags[i] = -1
	}
	return d
}

// DRAMDevice returns the underlying DRAM cost model.
func (d *Device) DRAMDevice() *device.Device { return d.dram }

// NVMDevice returns the underlying NVM cost model.
func (d *Device) NVMDevice() *device.Device { return d.nvm }

// access walks the lines covered by [off, off+n) and charges misses;
// isWrite marks touched lines dirty.
func (d *Device) access(c *vclock.Clock, off int64, n int, isWrite bool) {
	first := off / d.lineSize
	last := (off + int64(n) - 1) / d.lineSize
	for line := first; line <= last; line++ {
		set := line % d.nSets
		d.mu.Lock()
		hit := d.tags[set] == line
		var writeback bool
		if !hit {
			writeback = d.dirty[set] && d.tags[set] >= 0
			d.tags[set] = line
			d.dirty[set] = isWrite
		} else if isWrite {
			d.dirty[set] = true
		}
		d.mu.Unlock()
		if !hit {
			if writeback {
				d.nvm.Write(c, int(d.lineSize))
			}
			d.nvm.Read(c, int(d.lineSize))
		}
	}
}

// Read charges a read of n bytes at offset off.
func (d *Device) Read(c *vclock.Clock, off int64, n int) {
	d.access(c, off, n, false)
	d.dram.Read(c, n)
}

// Write charges a write of n bytes at offset off.
func (d *Device) Write(c *vclock.Clock, off int64, n int) {
	d.access(c, off, n, true)
	d.dram.Write(c, n)
}

// HitRatio reports the fraction of the cache currently populated (a cheap
// occupancy proxy used by tests).
func (d *Device) HitRatio() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	used := 0
	for _, t := range d.tags {
		if t >= 0 {
			used++
		}
	}
	return float64(used) / float64(d.nSets)
}
