package memmode

import (
	"testing"

	"github.com/spitfire-db/spitfire/internal/vclock"
)

func TestHitIsCheaperThanMiss(t *testing.T) {
	d := New(Options{DRAMBytes: 64 * 1024, LineSize: 4096})
	c := vclock.New()

	d.Read(c, 0, 4096) // cold miss
	missCost := c.Now()

	start := c.Now()
	d.Read(c, 0, 4096) // hit
	hitCost := c.Now() - start

	if hitCost >= missCost {
		t.Fatalf("hit cost %d >= miss cost %d", hitCost, missCost)
	}
	st := d.NVMDevice().Stats()
	if st.ReadOps != 1 {
		t.Fatalf("NVM read ops = %d, want 1 (only the cold miss)", st.ReadOps)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// One-set cache: every distinct line conflicts.
	d := New(Options{DRAMBytes: 4096, LineSize: 4096})
	c := vclock.New()

	d.Write(c, 0, 4096)   // write-allocate: fill from NVM, mark dirty
	d.Read(c, 4096, 4096) // line 1 displaces line 0 -> writeback + fill
	st := d.NVMDevice().Stats()
	if st.WriteOps != 1 {
		t.Fatalf("NVM write ops = %d, want 1 writeback", st.WriteOps)
	}
	if st.ReadOps != 2 {
		t.Fatalf("NVM read ops = %d, want 2 fills (write miss + read miss)", st.ReadOps)
	}
}

func TestCleanEvictionSkipsWriteback(t *testing.T) {
	d := New(Options{DRAMBytes: 4096, LineSize: 4096})
	c := vclock.New()
	d.Read(c, 0, 4096)
	d.Read(c, 4096, 4096) // displaces a clean line
	if st := d.NVMDevice().Stats(); st.WriteOps != 0 {
		t.Fatalf("clean eviction wrote back: %d write ops", st.WriteOps)
	}
}

func TestCapacityCliff(t *testing.T) {
	// A working set that fits in the DRAM cache should be served almost
	// entirely from DRAM after warmup; one that exceeds it should keep
	// missing to NVM. This is the mechanism behind Figure 5.
	run := func(dramBytes int64, workingSet int64) (nvmReads int64) {
		d := New(Options{DRAMBytes: dramBytes, LineSize: 4096})
		c := vclock.New()
		// Two sequential sweeps; the second measures steady state.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				d.NVMDevice().ResetStats()
			}
			for off := int64(0); off < workingSet; off += 4096 {
				d.Read(c, off, 4096)
			}
		}
		return d.NVMDevice().Stats().ReadOps
	}
	if r := run(1<<20, 1<<19); r != 0 {
		t.Fatalf("cacheable working set still missed %d times", r)
	}
	if r := run(1<<19, 1<<21); r == 0 {
		t.Fatal("oversized working set produced no NVM traffic")
	}
}

func TestDefaults(t *testing.T) {
	d := New(Options{DRAMBytes: 0})
	c := vclock.New()
	d.Read(c, 0, 64) // must not panic with a single-set cache
	if d.HitRatio() <= 0 {
		t.Fatal("hit ratio not tracking occupancy")
	}
}
