package bitmapclock

import (
	"sync"
	"testing"
)

func TestRefUnref(t *testing.T) {
	c := New(128)
	if c.Referenced(5) {
		t.Fatal("fresh frame referenced")
	}
	c.Ref(5)
	if !c.Referenced(5) {
		t.Fatal("Ref did not set bit")
	}
	c.Unref(5)
	if c.Referenced(5) {
		t.Fatal("Unref did not clear bit")
	}
	// Bits are independent.
	c.Ref(64)
	if c.Referenced(63) || c.Referenced(65) {
		t.Fatal("Ref(64) bled into neighbors")
	}
}

func TestVictimPrefersUnreferenced(t *testing.T) {
	c := New(4)
	c.Ref(0)
	c.Ref(1)
	// Hand starts at 0; frames 0 and 1 get second chances, frame 2 is the
	// first unreferenced frame.
	if v := c.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// The pass cleared 0 and 1's bits.
	if c.Referenced(0) || c.Referenced(1) {
		t.Fatal("sweep did not clear reference bits")
	}
}

func TestVictimSecondChanceCycle(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Ref(i)
	}
	// All referenced: first sweep clears all, second finds frame 0... the
	// exact victim depends on hand position, but Victim must terminate and
	// return a valid frame.
	v := c.Victim()
	if v < 0 || v >= 3 {
		t.Fatalf("victim %d out of range", v)
	}
}

func TestVictimAlwaysTerminatesUnderContention(t *testing.T) {
	c := New(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Hammer every frame's ref bit while another goroutine evicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < 64; i++ {
					c.Ref(i)
				}
			}
		}
	}()
	for i := 0; i < 10_000; i++ {
		v := c.Victim()
		if v < 0 || v >= 64 {
			t.Fatalf("victim %d out of range", v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestVictimCoversAllFrames(t *testing.T) {
	c := New(8)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		seen[c.Victim()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("victims covered %d frames, want 8", len(seen))
	}
}

func TestZeroFramesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
