// Package bitmapclock implements the CLOCK page-replacement policy over a
// concurrent bitmap, in the spirit of NB-GCLOCK (Yui et al., ICDE 2010),
// which the paper cites for its DRAM and NVM buffers (§5.2).
//
// Reference bits live in a packed atomic bitmap so that marking a frame
// referenced is a single lock-free fetch-OR, and the sweeping hand clears
// bits with fetch-AND. Victim *selection* is lock-free; the caller is
// responsible for validating the victim (e.g. freezing its pin count) and
// calling Evict again if validation fails.
package bitmapclock

import "sync/atomic"

// Clock is a concurrent CLOCK replacement policy over n frames.
type Clock struct {
	n     int
	words []atomic.Uint64
	hand  atomic.Uint64
}

// New creates a policy covering n frames, all initially unreferenced.
func New(n int) *Clock {
	if n <= 0 {
		panic("bitmapclock: frame count must be positive")
	}
	return &Clock{
		n:     n,
		words: make([]atomic.Uint64, (n+63)/64),
	}
}

// Len returns the number of frames covered.
func (c *Clock) Len() int { return c.n }

// Ref marks frame i as recently referenced.
func (c *Clock) Ref(i int) {
	c.words[i>>6].Or(1 << uint(i&63))
}

// Unref clears frame i's reference bit (used when a frame is freed).
func (c *Clock) Unref(i int) {
	c.words[i>>6].And(^(uint64(1) << uint(i&63)))
}

// Referenced reports whether frame i's reference bit is set.
func (c *Clock) Referenced(i int) bool {
	return c.words[i>>6].Load()&(1<<uint(i&63)) != 0
}

// Ranges splits n frames into the given number of contiguous, balanced,
// non-empty partitions. Sharded buffer pools use it to give each shard its
// own CLOCK instance — and therefore its own hand — over a private frame
// range: per-shard hands sweep independently, so victim selection never
// contends on one shared hand word. The last range absorbs the remainder;
// shards is clamped so no range is empty.
func Ranges(n, shards int) [][2]int {
	if n <= 0 {
		panic("bitmapclock: frame count must be positive")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	per := n / shards
	out := make([][2]int, shards)
	lo := 0
	for i := range out {
		hi := lo + per
		if i == shards-1 {
			hi = n
		}
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// Victim advances the hand until it finds a frame whose reference bit is
// clear, clearing bits as it passes (second-chance). It gives up after two
// full sweeps and returns the frame under the hand regardless, so it always
// terminates even if other workers keep re-referencing frames.
func (c *Clock) Victim() int {
	limit := 2 * c.n
	for i := 0; i < limit; i++ {
		h := int(c.hand.Add(1)-1) % c.n
		w := &c.words[h>>6]
		bit := uint64(1) << uint(h&63)
		if w.Load()&bit == 0 {
			return h
		}
		w.And(^bit) // second chance: clear and move on
	}
	return int(c.hand.Add(1)-1) % c.n
}
