package bitmapclock

import (
	"sync"
	"testing"
)

func TestGClockWeightClamping(t *testing.T) {
	if NewGClock(4, 0).Weight() != 1 {
		t.Fatal("weight 0 not clamped to 1")
	}
	if NewGClock(4, 999).Weight() != 255 {
		t.Fatal("weight 999 not clamped to 255")
	}
}

func TestGClockRefSaturates(t *testing.T) {
	c := NewGClock(8, 3)
	for i := 0; i < 10; i++ {
		c.Ref(5)
	}
	if got := c.get(5); got != 3 {
		t.Fatalf("counter = %d, want saturated at 3", got)
	}
	c.Unref(5)
	if c.Referenced(5) {
		t.Fatal("Unref did not clear")
	}
}

func TestGClockCountersIndependent(t *testing.T) {
	c := NewGClock(16, 3)
	c.Ref(8)
	c.Ref(8)
	if c.Referenced(7) || c.Referenced(9) {
		t.Fatal("Ref(8) bled into packed neighbors")
	}
	if got := c.get(8); got != 2 {
		t.Fatalf("counter = %d", got)
	}
}

func TestGClockVictimPrefersCold(t *testing.T) {
	c := NewGClock(4, 2)
	c.Ref(0)
	c.Ref(0)
	c.Ref(1)
	// Frame 2 is cold; the sweep decrements 0 and 1 on the way.
	if v := c.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	if c.get(0) != 1 || c.get(1) != 0 {
		t.Fatalf("sweep decrements wrong: %d, %d", c.get(0), c.get(1))
	}
}

func TestGClockHotFramesSurviveMoreSweeps(t *testing.T) {
	// With weight 3, a maximally referenced frame survives three full
	// sweeps where a once-referenced frame survives one.
	c := NewGClock(2, 3)
	for i := 0; i < 3; i++ {
		c.Ref(0)
	}
	c.Ref(1)
	// Sweep: victims must be frame 1 first (drains after one pass), then
	// eventually frame 0.
	first := c.Victim()
	if first != 1 {
		t.Fatalf("first victim = %d, want the colder frame 1", first)
	}
}

func TestGClockVictimTerminatesUnderContention(t *testing.T) {
	c := NewGClock(32, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < 32; i++ {
					c.Ref(i)
				}
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if v := c.Victim(); v < 0 || v >= 32 {
			t.Fatalf("victim %d out of range", v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGClockZeroFramesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGClock(0, 1) did not panic")
		}
	}()
	NewGClock(0, 1)
}
