package bitmapclock

import "sync/atomic"

// GClock is the generalized-CLOCK variant of the cited NB-GCLOCK design:
// each frame carries a small reference *counter* instead of a single bit.
// Ref increments the counter up to a configurable weight; the sweeping hand
// decrements, so frequently referenced frames survive up to `weight` full
// sweeps. weight = 1 degenerates to classic CLOCK.
//
// Counters are packed eight per word and updated with CAS, keeping Ref and
// Victim lock-free like the bitmap variant.
type GClock struct {
	n      int
	weight uint8
	words  []atomic.Uint64 // 8 counters per word
	hand   atomic.Uint64
}

// NewGClock creates a generalized CLOCK over n frames with the given
// maximum reference count (clamped to [1, 255]).
func NewGClock(n int, weight int) *GClock {
	if n <= 0 {
		panic("bitmapclock: frame count must be positive")
	}
	if weight < 1 {
		weight = 1
	}
	if weight > 255 {
		weight = 255
	}
	return &GClock{
		n:      n,
		weight: uint8(weight),
		words:  make([]atomic.Uint64, (n+7)/8),
	}
}

// Len returns the number of frames covered.
func (c *GClock) Len() int { return c.n }

// Weight returns the maximum reference count.
func (c *GClock) Weight() int { return int(c.weight) }

func (c *GClock) get(i int) uint8 {
	w := c.words[i>>3].Load()
	return uint8(w >> (uint(i&7) * 8))
}

// set CASes counter i from old to new within its word; reports success.
func (c *GClock) cas(i int, old, new uint8) bool {
	word := &c.words[i>>3]
	shift := uint(i&7) * 8
	for {
		w := word.Load()
		if uint8(w>>shift) != old {
			return false
		}
		nw := (w &^ (uint64(0xFF) << shift)) | uint64(new)<<shift
		if word.CompareAndSwap(w, nw) {
			return true
		}
	}
}

// Ref bumps frame i's reference counter (saturating at the weight).
func (c *GClock) Ref(i int) {
	for {
		cur := c.get(i)
		if cur >= c.weight {
			return
		}
		if c.cas(i, cur, cur+1) {
			return
		}
	}
}

// Unref zeroes frame i's counter (used when a frame is freed).
func (c *GClock) Unref(i int) {
	for {
		cur := c.get(i)
		if cur == 0 {
			return
		}
		if c.cas(i, cur, 0) {
			return
		}
	}
}

// Referenced reports whether frame i's counter is non-zero.
func (c *GClock) Referenced(i int) bool { return c.get(i) != 0 }

// Victim sweeps the hand until it finds a frame whose counter is zero,
// decrementing counters along the way.
//
// A naive sweep decrements by one per visit, so with every counter charged
// to a high weight w it degenerates into w full rotations of CAS traffic
// before anything reaches zero. Instead, each rotation tracks the minimum
// counter it observed and the next rotation decrements by (that minimum
// minus what was already subtracted), so the coldest frame reaches zero
// within two rotations regardless of the weight, while the relative order
// of hotter frames is preserved (everyone loses the same amount per
// rotation). A rotation cap keeps the sweep terminating under concurrent
// Refs, falling back to the frame under the hand.
func (c *GClock) Victim() int {
	n := c.n
	step := uint8(1)
	for sweep := 0; sweep < 4; sweep++ {
		min := uint8(255)
		for i := 0; i < n; i++ {
			h := int(c.hand.Add(1)-1) % n
			cur := c.get(h)
			if cur == 0 {
				return h
			}
			if cur < min {
				min = cur
			}
			c.sub(h, step)
		}
		// No zero found in a full rotation: the coldest frame observed held
		// `min` and has since lost `step`, so a decrement of min-step zeroes
		// it on the next pass.
		if min > step {
			step = min - step
		} else {
			step = 1
		}
	}
	return int(c.hand.Add(1)-1) % c.n
}

// sub decrements counter i by d, saturating at zero.
func (c *GClock) sub(i int, d uint8) {
	word := &c.words[i>>3]
	shift := uint(i&7) * 8
	for {
		w := word.Load()
		cur := uint8(w >> shift)
		if cur == 0 {
			return
		}
		nv := uint8(0)
		if cur > d {
			nv = cur - d
		}
		nw := (w &^ (uint64(0xFF) << shift)) | uint64(nv)<<shift
		if word.CompareAndSwap(w, nw) {
			return
		}
	}
}
