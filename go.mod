module github.com/spitfire-db/spitfire

go 1.23
