// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus micro-benchmarks of the core building blocks.
//
// The experiment benchmarks run the same code as cmd/spitfire-bench in
// -quick mode (sizes shrunk 4x with every capacity ratio preserved).
// Throughput inside an experiment is measured in simulated time; the
// testing.B numbers measure the wall-clock cost of regenerating each
// result. Custom metrics surface the headline simulated numbers.
package spitfire_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	spitfire "github.com/spitfire-db/spitfire"
	"github.com/spitfire-db/spitfire/internal/harness"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// runExperiment is the common body for the per-figure benchmarks.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := harness.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(harness.Opts{Quick: true, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }

// ---- micro-benchmarks --------------------------------------------------------

// benchBM builds a small three-tier manager seeded with pages. The
// background cleaner is disabled so the micro-benchmarks isolate the
// foreground path; BenchmarkFetchChurnCleaner measures the cleaner itself.
func benchBM(b *testing.B, pol spitfire.Policy, pages int) (*spitfire.BufferManager, *spitfire.Ctx) {
	b.Helper()
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 16 * spitfire.PageSize,
		NVMBytes:  64 * (spitfire.PageSize + 64),
		Policy:    pol,
		Cleaner:   spitfire.CleanerConfig{Disable: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bm.Close)
	ctx := spitfire.NewCtx(1)
	buf := make([]byte, spitfire.PageSize)
	for pid := uint64(0); pid < uint64(pages); pid++ {
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			b.Fatal(err)
		}
	}
	return bm, ctx
}

// BenchmarkFetchHit measures the wall-clock cost of a buffered fetch (the
// hot path of every workload op).
func BenchmarkFetchHit(b *testing.B) {
	bm, ctx := benchBM(b, spitfire.SpitfireLazy, 8)
	// Warm the page in.
	h, err := bm.FetchPage(ctx, 0, spitfire.ReadIntent)
	if err != nil {
		b.Fatal(err)
	}
	h.Release()
	buf := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := bm.FetchPage(ctx, 0, spitfire.ReadIntent)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.ReadAt(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}

// BenchmarkFetchChurn measures fetches over a working set far beyond the
// buffers, exercising the full eviction/migration machinery.
func BenchmarkFetchChurn(b *testing.B) {
	const pages = 512
	bm, ctx := benchBM(b, spitfire.SpitfireLazy, pages)
	buf := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid := uint64(i*7919) % pages
		h, err := bm.FetchPage(ctx, pid, spitfire.ReadIntent)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.ReadAt(ctx, 0, buf); err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
	b.ReportMetric(float64(ctx.Clock.Now())/float64(b.N), "simulated-ns/op")
}

// BenchmarkFetchChurnParallel exercises the concurrent latching protocol.
func BenchmarkFetchChurnParallel(b *testing.B) {
	const pages = 512
	bm, _ := benchBM(b, spitfire.SpitfireLazy, pages)
	var worker int64
	b.RunParallel(func(pb *testing.PB) {
		w := worker
		worker++
		ctx := spitfire.NewCtx(uint64(w) + 100)
		rng := uint64(w)*2654435761 + 1
		buf := make([]byte, 1024)
		for pb.Next() {
			rng = rng*6364136223846793005 + 1442695040888963407
			pid := (rng >> 33) % pages
			h, err := bm.FetchPage(ctx, pid, spitfire.ReadIntent)
			if err != nil {
				b.Error(err)
				return
			}
			if err := h.ReadAt(ctx, 0, buf); err != nil {
				b.Error(err)
				h.Release()
				return
			}
			h.Release()
		}
	})
}

// BenchmarkFetchParallel measures the multi-worker fetch/eviction path with
// the pools unsharded (shards=1, the old global CLOCK hand + free list) and
// sharded GOMAXPROCS ways (the facade default). The working set is far
// beyond DRAM so every worker continuously allocates frames, which is the
// path the per-shard free lists and work-stealing exist for. On a single
// CPU the two runs are expected to be within noise of each other (there is
// no contention to shed); the shards=1 baseline is still worth keeping as
// the regression reference.
func BenchmarkFetchParallel(b *testing.B) {
	const pages = 512
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			bm, err := spitfire.New(spitfire.Config{
				DRAMBytes: 16 * spitfire.PageSize,
				NVMBytes:  64 * (spitfire.PageSize + 64),
				Policy:    spitfire.SpitfireLazy,
				Shards:    shards,
				Cleaner:   spitfire.CleanerConfig{Disable: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(bm.Close)
			seedCtx := spitfire.NewCtx(1)
			seed := make([]byte, spitfire.PageSize)
			for pid := uint64(0); pid < pages; pid++ {
				if err := bm.SeedPage(seedCtx, pid, seed); err != nil {
					b.Fatal(err)
				}
			}
			var worker int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker
				worker++
				ctx := spitfire.NewCtx(uint64(w) + 100)
				rng := uint64(w)*2654435761 + 1
				buf := make([]byte, 1024)
				for pb.Next() {
					rng = rng*6364136223846793005 + 1442695040888963407
					pid := (rng >> 33) % pages
					h, err := bm.FetchPage(ctx, pid, spitfire.ReadIntent)
					if err != nil {
						b.Error(err)
						return
					}
					if err := h.ReadAt(ctx, 0, buf); err != nil {
						b.Error(err)
						h.Release()
						return
					}
					h.Release()
				}
			})
		})
	}
}

// BenchmarkWALAppend measures the commit path: one update record plus the
// NVM-buffer persist.
func BenchmarkWALAppend(b *testing.B) {
	pm := spitfire.NewPMem(spitfire.PMemOptions{Size: 1 << 22})
	w, err := spitfire.NewWAL(spitfire.WALOptions{Buffer: pm, Store: spitfire.NewMemLog(nil)})
	if err != nil {
		b.Fatal(err)
	}
	ctx := spitfire.NewCtx(1)
	rec := &spitfire.LogRecord{TxnID: 1, Before: make([]byte, 128), After: make([]byte, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(ctx.Clock, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// discardLog is a LogStore that throws flushed bytes away. The parallel
// append benchmark uses it so wall-clock time measures the commit path's
// latch hand-offs, not the benchmark machine's memory bandwidth replaying
// SSD writes into an ever-growing in-memory log.
type discardLog struct{}

func (discardLog) Append(*vclock.Clock, []byte) error    { return nil }
func (discardLog) ReadAll(*vclock.Clock) ([]byte, error) { return nil, nil }
func (discardLog) Truncate(*vclock.Clock) error          { return nil }

// BenchmarkWALAppendParallel measures the multi-worker commit path with the
// append mutex on it (shards=1, the old global-lock behavior) and off it
// (shards=4, worker-affine shards + group commit). Records carry small
// before/after images so the benchmark is dominated by the latch hand-off a
// commit record pays, not by memmove of page images. The shards=4 numbers
// tune spitfire.RecommendedWALShards.
func BenchmarkWALAppendParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pm := spitfire.NewPMem(spitfire.PMemOptions{Size: 1 << 26})
			w, err := spitfire.NewWAL(spitfire.WALOptions{
				Buffer: pm, Store: discardLog{}, Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			var worker int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				wi := worker
				worker++
				ctx := spitfire.NewCtx(uint64(wi) + 100)
				// Per-goroutine record: Append assigns rec.LSN in place.
				rec := &spitfire.LogRecord{TxnID: uint64(wi),
					Before: make([]byte, 16), After: make([]byte, 16)}
				for pb.Next() {
					if _, err := w.Append(ctx.Clock, rec); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkEngineUpdate measures a full transactional update (fetch + MVTO
// + WAL + in-place write + commit).
func BenchmarkEngineUpdate(b *testing.B) {
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 16 * spitfire.PageSize,
		NVMBytes:  64 * (spitfire.PageSize + 64),
		Policy:    spitfire.SpitfireLazy,
		Cleaner:   spitfire.CleanerConfig{Disable: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bm.Close)
	pm := spitfire.NewPMem(spitfire.PMemOptions{Size: 1 << 22})
	w, err := spitfire.NewWAL(spitfire.WALOptions{Buffer: pm, Store: spitfire.NewMemLog(nil)})
	if err != nil {
		b.Fatal(err)
	}
	db, err := spitfire.OpenDB(spitfire.DBOptions{BM: bm, WAL: w})
	if err != nil {
		b.Fatal(err)
	}
	tb, err := db.CreateTable(1, "kv", 256)
	if err != nil {
		b.Fatal(err)
	}
	ctx := spitfire.NewCtx(1)
	const keys = 256
	if err := tb.Load(ctx, keys, func(i uint64, p []byte) uint64 { return i }); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := db.Begin()
		if err := tb.Update(ctx, txn, uint64(i)%keys, payload); err != nil {
			b.Fatal(err)
		}
		if err := txn.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation beyond the paper: per-policy fetch cost under churn, isolating
// the migration-policy overhead the paper's Figure 12 folds into workloads.
func BenchmarkPolicyChurn(b *testing.B) {
	for _, pc := range []struct {
		name string
		p    spitfire.Policy
	}{
		{"Hymem", spitfire.Hymem},
		{"Eager", spitfire.SpitfireEager},
		{"Lazy", spitfire.SpitfireLazy},
	} {
		b.Run(pc.name, func(b *testing.B) {
			const pages = 256
			bm, ctx := benchBM(b, pc.p, pages)
			buf := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pid := uint64(i*7919) % pages
				h, err := bm.FetchPage(ctx, pid, spitfire.WriteIntent)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.WriteAt(ctx, 0, buf); err != nil {
					b.Fatal(err)
				}
				h.Release()
			}
			b.ReportMetric(float64(ctx.Clock.Now())/float64(b.N), "simulated-ns/op")
		})
	}
}

// Ablation: admission-queue sizing (§6.5 found ½ of NVM pages to work
// well). Reported metric is the simulated time per operation — lower is
// better.
func BenchmarkAdmissionQueueSize(b *testing.B) {
	for _, frac := range []float64{0.125, 0.5, 1.0} {
		b.Run(fmt.Sprintf("frac=%g", frac), func(b *testing.B) {
			const pages = 256
			nvmFrames := 64
			bm, err := spitfire.New(spitfire.Config{
				DRAMBytes:              16 * spitfire.PageSize,
				NVMBytes:               int64(nvmFrames) * (spitfire.PageSize + 64),
				Policy:                 spitfire.Hymem,
				AdmissionQueueCapacity: int(float64(nvmFrames) * frac),
				Cleaner:                spitfire.CleanerConfig{Disable: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(bm.Close)
			ctx := spitfire.NewCtx(1)
			buf := make([]byte, spitfire.PageSize)
			for pid := uint64(0); pid < pages; pid++ {
				if err := bm.SeedPage(ctx, pid, buf); err != nil {
					b.Fatal(err)
				}
			}
			small := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pid := uint64(i*7919) % pages
				h, err := bm.FetchPage(ctx, pid, spitfire.WriteIntent)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.WriteAt(ctx, 0, small); err != nil {
					b.Fatal(err)
				}
				h.Release()
			}
			b.ReportMetric(float64(ctx.Clock.Now())/float64(b.N), "simulated-ns/op")
		})
	}
}

func BenchmarkExtraWear(b *testing.B) { runExperiment(b, "extra-wear") }

// Ablation: CLOCK vs generalized GCLOCK replacement (the cited NB-GCLOCK
// design). Higher weights protect hot frames across more sweeps; the
// simulated-ns/op metric shows whether that pays off under a skewed churn.
func BenchmarkClockWeight(b *testing.B) {
	for _, weight := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("weight=%d", weight), func(b *testing.B) {
			bm, err := spitfire.New(spitfire.Config{
				DRAMBytes:   8 * spitfire.PageSize,
				NVMBytes:    32 * (spitfire.PageSize + 64),
				Policy:      spitfire.SpitfireLazy,
				ClockWeight: weight,
				// Foreground path only: the acceptance check for the
				// GCLOCK sweep fix must not be masked by the cleaner.
				Cleaner: spitfire.CleanerConfig{Disable: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(bm.Close)
			ctx := spitfire.NewCtx(1)
			const pages = 256
			page := make([]byte, spitfire.PageSize)
			for pid := uint64(0); pid < pages; pid++ {
				if err := bm.SeedPage(ctx, pid, page); err != nil {
					b.Fatal(err)
				}
			}
			// Skewed access: 80% of touches hit 16 hot pages.
			rng := uint64(99)
			buf := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				pid := (rng >> 33) % pages
				if rng%10 < 8 {
					pid = (rng >> 33) % 16
				}
				h, err := bm.FetchPage(ctx, pid, spitfire.ReadIntent)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.ReadAt(ctx, 0, buf); err != nil {
					b.Fatal(err)
				}
				h.Release()
			}
			b.ReportMetric(float64(ctx.Clock.Now())/float64(b.N), "simulated-ns/op")
		})
	}
}

// cleanerBurst is the burst length of the cleaner benchmarks and
// cleanerIdle the think-time gap between bursts. The watermarks are sized so
// one burst of dirty misses fits inside the pre-cleaned free-list stock.
const (
	cleanerBurst = 8
	cleanerIdle  = 250 * time.Microsecond
)

// cleanerBenchBM builds the write-churn manager for the cleaner benchmarks.
func cleanerBenchBM(b *testing.B, on bool, pages int) *spitfire.BufferManager {
	b.Helper()
	cfg := spitfire.Config{
		DRAMBytes: 16 * spitfire.PageSize,
		NVMBytes:  64 * (spitfire.PageSize + 64),
		Policy:    spitfire.SpitfireLazy,
	}
	if on {
		cfg.Cleaner = spitfire.CleanerConfig{
			Enable:    true,
			LowWater:  6,
			HighWater: 12,
			BatchSize: 16,
			Interval:  50 * time.Microsecond,
		}
	} else {
		cfg.Cleaner = spitfire.CleanerConfig{Disable: true}
	}
	bm, err := spitfire.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bm.Close)
	ctx := spitfire.NewCtx(1)
	buf := make([]byte, spitfire.PageSize)
	for pid := uint64(0); pid < uint64(pages); pid++ {
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			b.Fatal(err)
		}
	}
	return bm
}

// BenchmarkFetchChurnCleaner is the headline number for the background
// cleaner: a bursty dirty-churn workload (every fetch writes, every eviction
// needs a write-back) with the cleaner off (inline eviction on the fetch
// path) vs on (pre-cleaned frames popped from the free list). The idle gaps
// between bursts model think time and are excluded from the timer — they are
// when the cleaner pre-cleans, so the timed fetches compare inline eviction
// against free-list pops. fg-evicts/op and pre-cleaned/op show the eviction
// work shifting off the foreground path.
func BenchmarkFetchChurnCleaner(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("cleaner=%t", on), func(b *testing.B) {
			const pages = 256
			bm := cleanerBenchBM(b, on, pages)
			ctx := spitfire.NewCtx(2)
			buf := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%cleanerBurst == 0 && i > 0 {
					b.StopTimer()
					time.Sleep(cleanerIdle)
					b.StartTimer()
				}
				pid := uint64(i*7919) % pages
				h, err := bm.FetchPage(ctx, pid, spitfire.WriteIntent)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.WriteAt(ctx, 0, buf); err != nil {
					b.Fatal(err)
				}
				h.Release()
			}
			b.StopTimer()
			st := bm.Stats()
			b.ReportMetric(float64(st.ForegroundEvicts)/float64(b.N), "fg-evicts/op")
			b.ReportMetric(float64(st.CleanerCleanedDRAM+st.CleanerCleanedNVM)/float64(b.N), "pre-cleaned/op")
		})
	}
}

// BenchmarkFetchChurnCleanerParallel is the same bursty comparison with
// concurrent workers. RunParallel cannot exclude the think time from the
// timer, so the gaps are timed for both variants; the cleaner's win shows as
// eviction work overlapping the (identical) idle time instead of extending
// the bursts.
func BenchmarkFetchChurnCleanerParallel(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("cleaner=%t", on), func(b *testing.B) {
			const pages = 256
			bm := cleanerBenchBM(b, on, pages)
			var worker int64
			b.RunParallel(func(pb *testing.PB) {
				w := worker
				worker++
				ctx := spitfire.NewCtx(uint64(w) + 200)
				rng := uint64(w)*2654435761 + 7
				buf := make([]byte, 1024)
				for i := 0; pb.Next(); i++ {
					if i%cleanerBurst == 0 && i > 0 {
						time.Sleep(cleanerIdle)
					}
					rng = rng*6364136223846793005 + 1442695040888963407
					pid := (rng >> 33) % pages
					h, err := bm.FetchPage(ctx, pid, spitfire.WriteIntent)
					if err != nil {
						b.Error(err)
						return
					}
					if err := h.WriteAt(ctx, 0, buf); err != nil {
						b.Error(err)
						h.Release()
						return
					}
					h.Release()
				}
			})
			st := bm.Stats()
			b.ReportMetric(float64(st.ForegroundEvicts)/float64(b.N), "fg-evicts/op")
		})
	}
}
