package spitfire_test

import (
	"fmt"

	spitfire "github.com/spitfire-db/spitfire"
)

// ExampleNew shows the smallest three-tier round trip: create a page,
// write it, evict-churn it through the hierarchy, and read it back.
func ExampleNew() {
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 4 * spitfire.PageSize,
		NVMBytes:  16 * spitfire.PageSize,
		Policy:    spitfire.SpitfireLazy,
	})
	if err != nil {
		panic(err)
	}
	ctx := spitfire.NewCtx(7)

	pid, h, _ := bm.NewPage(ctx)
	h.WriteAt(ctx, 0, []byte("three tiers"))
	h.Release()

	h, _ = bm.FetchPage(ctx, pid, spitfire.ReadIntent)
	buf := make([]byte, 11)
	h.ReadAt(ctx, 0, buf)
	h.Release()
	fmt.Println(string(buf))
	// Output: three tiers
}

// ExamplePolicy shows the paper's Table 3 presets and the policy tuple
// notation.
func ExamplePolicy() {
	fmt.Println(spitfire.SpitfireLazy)
	fmt.Println(spitfire.Hymem)
	// Output:
	// ⟨Dr=0.01, Dw=0.01, Nr=0.2, Nw=1⟩
	// ⟨Dr=1, Dw=1, Nr=0, Nw=AdmQueue⟩
}

// ExampleNewTuner runs a few epochs of the §4 adaptation loop against a
// synthetic workload response that prefers lazy DRAM migration.
func ExampleNewTuner() {
	tn := spitfire.NewTuner(spitfire.TunerOptions{
		Initial:   spitfire.SpitfireEager,
		LockstepD: true,
		LockstepN: true,
		Seed:      42,
	})
	p := tn.Propose()
	for i := 0; i < 200; i++ {
		throughput := 1e6 * (1.2 - p.Dr) // lazier D is faster here
		p = tn.Observe(throughput)
	}
	fmt.Println("best D:", tn.Best().Dr)
	// Output: best D: 0
}
